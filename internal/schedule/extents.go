package schedule

import "fmt"

// Extents resolves the extent of every variable in the schedule given the
// extents of the statement's original variables (from tensor shapes).
func (s *Schedule) Extents(orig map[string]int) (map[string]int, error) {
	out := map[string]int{}
	var extentOf func(name string) (int, error)
	extentOf = func(name string) (int, error) {
		if e, ok := out[name]; ok {
			return e, nil
		}
		v, ok := s.vars[name]
		if !ok {
			return 0, fmt.Errorf("schedule: unknown variable %s", name)
		}
		var e int
		switch v.Kind {
		case Original:
			oe, ok := orig[name]
			if !ok {
				return 0, fmt.Errorf("schedule: no extent for original variable %s", name)
			}
			e = oe
		case DivideOuter:
			e = v.Param
		case DivideInner:
			oe, err := extentOf(v.Origin)
			if err != nil {
				return 0, err
			}
			e = ceilDiv(oe, v.Param)
		case SplitInner:
			e = v.Param
		case SplitOuter:
			oe, err := extentOf(v.Origin)
			if err != nil {
				return 0, err
			}
			e = ceilDiv(oe, v.Param)
		case Fused:
			a, err := extentOf(v.FuseA)
			if err != nil {
				return 0, err
			}
			b, err := extentOf(v.FuseB)
			if err != nil {
				return 0, err
			}
			e = a * b
		case Rotated:
			oe, err := extentOf(v.Origin)
			if err != nil {
				return 0, err
			}
			e = oe
		default:
			return 0, fmt.Errorf("schedule: unhandled kind for %s", name)
		}
		out[name] = e
		return e, nil
	}
	for name := range s.vars {
		if _, err := extentOf(name); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func clampIv(iv Interval, n int) Interval {
	if iv.Lo < 0 {
		iv.Lo = 0
	}
	if iv.Hi > n {
		iv.Hi = n
	}
	return iv
}

// Interval is a half-open integer range [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Fixed reports whether the interval contains exactly one value.
func (iv Interval) Fixed() bool { return iv.Hi == iv.Lo+1 }

// Intervals computes the value interval of every *original* statement
// variable given fixed assignments env for some schedule variables; every
// schedule variable not in env ranges over its full extent. Extents must
// come from Extents. This is the bounds analysis used to derive region
// requirement rectangles (§6.2).
func (s *Schedule) Intervals(env map[string]int, extents map[string]int) map[string]Interval {
	memo := map[string]Interval{}
	var ivOf func(name string) Interval
	ivOf = func(name string) Interval {
		if iv, ok := memo[name]; ok {
			return iv
		}
		var iv Interval
		if x, ok := env[name]; ok {
			iv = Interval{Lo: x, Hi: x + 1}
			memo[name] = iv
			return iv
		}
		v := s.vars[name]
		// A variable still present in the loop order and not in env spans
		// its full extent. Variables replaced by transformations are
		// reconstructed from their replacements.
		if s.posOf(name) >= 0 {
			iv = Interval{Lo: 0, Hi: extents[name]}
			memo[name] = iv
			return iv
		}
		switch {
		case v == nil:
			panic(fmt.Sprintf("schedule: interval of unknown variable %s", name))
		case s.dividedOrSplit(name) != nil:
			d := s.dividedOrSplit(name)
			outer, inner := ivOf(d.outer), ivOf(d.inner)
			blk := d.blockSize(extents)
			lo := outer.Lo*blk + inner.Lo
			hi := (outer.Hi-1)*blk + inner.Hi
			iv = clampIv(Interval{Lo: lo, Hi: hi}, extents[name])
		case s.rotatedBy(name) != nil:
			r := s.rotatedBy(name)
			rv := ivOf(r.Name)
			allFixed := rv.Fixed()
			sum := rv.Lo
			for _, o := range r.RotateOffsets {
				ov := ivOf(o)
				if !ov.Fixed() {
					allFixed = false
					break
				}
				sum += ov.Lo
			}
			if allFixed {
				x := sum % extents[name]
				iv = Interval{Lo: x, Hi: x + 1}
			} else {
				iv = Interval{Lo: 0, Hi: extents[name]}
			}
		case s.fusedInto(name) != nil:
			f := s.fusedInto(name)
			fv := ivOf(f.Name)
			bExt := extents[f.FuseB]
			if fv.Fixed() {
				if name == f.FuseA {
					x := fv.Lo / bExt
					iv = Interval{Lo: x, Hi: x + 1}
				} else {
					x := fv.Lo % bExt
					iv = Interval{Lo: x, Hi: x + 1}
				}
			} else {
				iv = Interval{Lo: 0, Hi: extents[name]}
			}
		default:
			// Unconstrained (should not happen): full extent.
			iv = Interval{Lo: 0, Hi: extents[name]}
		}
		memo[name] = iv
		return iv
	}
	out := map[string]Interval{}
	for _, v := range s.stmt.Vars() {
		out[v.Name] = ivOf(v.Name)
	}
	return out
}

// Value computes the concrete value of every original statement variable
// from a full assignment env of the loop-order variables. It returns false
// if any original variable falls outside its extent (boundary clamping of
// non-divisible blocks).
func (s *Schedule) Value(env map[string]int, extents map[string]int) (map[string]int, bool) {
	ivs := s.Intervals(env, extents)
	out := map[string]int{}
	for name, iv := range ivs {
		if iv.Hi <= iv.Lo {
			// Clamping produced an empty interval: the assignment lies in
			// the ragged tail of a non-divisible block.
			return nil, false
		}
		if !iv.Fixed() {
			panic(fmt.Sprintf("schedule: variable %s not fixed by full assignment", name))
		}
		if iv.Lo < 0 || iv.Lo >= extents[name] {
			return nil, false
		}
		out[name] = iv.Lo
	}
	return out, true
}

type divInfo struct {
	outer, inner string
	isDivide     bool
	param        int
	origin       string
}

func (d *divInfo) blockSize(extents map[string]int) int {
	if d.isDivide {
		return ceilDiv(extents[d.origin], d.param)
	}
	return d.param // split: inner size is the parameter
}

// dividedOrSplit returns division info if name was divided or split.
func (s *Schedule) dividedOrSplit(name string) *divInfo {
	for _, v := range s.vars {
		if v.Origin == name && (v.Kind == DivideOuter || v.Kind == SplitOuter) {
			return &divInfo{outer: v.Name, inner: v.Partner, isDivide: v.Kind == DivideOuter, param: v.Param, origin: name}
		}
	}
	return nil
}

// rotatedBy returns the Rotated variable that replaced name, if any.
func (s *Schedule) rotatedBy(name string) *Var {
	for _, v := range s.vars {
		if v.Kind == Rotated && v.Origin == name {
			return v
		}
	}
	return nil
}

// fusedInto returns the Fused variable that consumed name, if any.
func (s *Schedule) fusedInto(name string) *Var {
	for _, v := range s.vars {
		if v.Kind == Fused && (v.FuseA == name || v.FuseB == name) {
			return v
		}
	}
	return nil
}
