package schedule

import "fmt"

// Extents resolves the extent of every variable in the schedule given the
// extents of the statement's original variables (from tensor shapes).
func (s *Schedule) Extents(orig map[string]int) (map[string]int, error) {
	out := map[string]int{}
	var extentOf func(name string) (int, error)
	extentOf = func(name string) (int, error) {
		if e, ok := out[name]; ok {
			return e, nil
		}
		v, ok := s.vars[name]
		if !ok {
			return 0, fmt.Errorf("schedule: unknown variable %s", name)
		}
		var e int
		switch v.Kind {
		case Original:
			oe, ok := orig[name]
			if !ok {
				return 0, fmt.Errorf("schedule: no extent for original variable %s", name)
			}
			e = oe
		case DivideOuter:
			e = v.Param
		case DivideInner:
			oe, err := extentOf(v.Origin)
			if err != nil {
				return 0, err
			}
			e = ceilDiv(oe, v.Param)
		case SplitInner:
			e = v.Param
		case SplitOuter:
			oe, err := extentOf(v.Origin)
			if err != nil {
				return 0, err
			}
			e = ceilDiv(oe, v.Param)
		case Fused:
			a, err := extentOf(v.FuseA)
			if err != nil {
				return 0, err
			}
			b, err := extentOf(v.FuseB)
			if err != nil {
				return 0, err
			}
			e = a * b
		case Rotated:
			oe, err := extentOf(v.Origin)
			if err != nil {
				return 0, err
			}
			e = oe
		default:
			return 0, fmt.Errorf("schedule: unhandled kind for %s", name)
		}
		out[name] = e
		return e, nil
	}
	for name := range s.vars {
		if _, err := extentOf(name); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func clampIv(iv Interval, n int) Interval {
	if iv.Lo < 0 {
		iv.Lo = 0
	}
	if iv.Hi > n {
		iv.Hi = n
	}
	return iv
}

// Interval is a half-open integer range [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Fixed reports whether the interval contains exactly one value.
func (iv Interval) Fixed() bool { return iv.Hi == iv.Lo+1 }

// Intervals computes the value interval of every *original* statement
// variable given fixed assignments env for some schedule variables; every
// schedule variable not in env ranges over its full extent. Extents must
// come from Extents. This is the bounds analysis used to derive region
// requirement rectangles (§6.2).
//
// Intervals is a compatibility shim over the compiled Evaluator; hot loops
// should hold an Evaluator and call Eval with reused scratch buffers.
func (s *Schedule) Intervals(env map[string]int, extents map[string]int) map[string]Interval {
	ev := s.EvaluatorFor(extents)
	n := ev.NumVars()
	fixed := make([]bool, n)
	vals := make([]int, n)
	for name, x := range env {
		if id := ev.VarID(name); id >= 0 {
			fixed[id] = true
			vals[id] = x
		}
	}
	scratch := make([]Interval, n)
	ev.Eval(fixed, vals, scratch)
	out := make(map[string]Interval, len(ev.OrigIDs()))
	for _, id := range ev.OrigIDs() {
		out[ev.VarName(int(id))] = scratch[id]
	}
	return out
}

// Value computes the concrete value of every original statement variable
// from a full assignment env of the loop-order variables. It returns false
// if any original variable falls outside its extent (boundary clamping of
// non-divisible blocks).
func (s *Schedule) Value(env map[string]int, extents map[string]int) (map[string]int, bool) {
	ev := s.EvaluatorFor(extents)
	n := ev.NumVars()
	fixed := make([]bool, n)
	vals := make([]int, n)
	for name, x := range env {
		if id := ev.VarID(name); id >= 0 {
			fixed[id] = true
			vals[id] = x
		}
	}
	scratch := make([]Interval, n)
	orig := make([]int, len(ev.OrigIDs()))
	if !ev.ValueInto(fixed, vals, scratch, orig) {
		return nil, false
	}
	out := make(map[string]int, len(orig))
	for i, id := range ev.OrigIDs() {
		out[ev.VarName(int(id))] = orig[i]
	}
	return out, true
}

// EvaluatorFor returns the schedule's compiled evaluator for the given
// extents, compiling and caching it on first use. The cache is invalidated
// when further commands are applied and when called with different extents.
func (s *Schedule) EvaluatorFor(extents map[string]int) *Evaluator {
	s.evalMu.Lock()
	defer s.evalMu.Unlock()
	if s.evalCache != nil && equalIntMaps(s.evalExtents, extents) {
		return s.evalCache
	}
	s.evalCache = s.CompileEvaluator(extents)
	s.evalExtents = make(map[string]int, len(extents))
	for k, v := range extents {
		s.evalExtents[k] = v
	}
	return s.evalCache
}

func equalIntMaps(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

type divInfo struct {
	outer, inner string
	isDivide     bool
	param        int
	origin       string
}

func (d *divInfo) blockSize(extents map[string]int) int {
	if d.isDivide {
		return ceilDiv(extents[d.origin], d.param)
	}
	return d.param // split: inner size is the parameter
}

// dividedOrSplit returns division info if name was divided or split.
func (s *Schedule) dividedOrSplit(name string) *divInfo {
	for _, v := range s.vars {
		if v.Origin == name && (v.Kind == DivideOuter || v.Kind == SplitOuter) {
			return &divInfo{outer: v.Name, inner: v.Partner, isDivide: v.Kind == DivideOuter, param: v.Param, origin: name}
		}
	}
	return nil
}

// rotatedBy returns the Rotated variable that replaced name, if any.
func (s *Schedule) rotatedBy(name string) *Var {
	for _, v := range s.vars {
		if v.Kind == Rotated && v.Origin == name {
			return v
		}
	}
	return nil
}

// fusedInto returns the Fused variable that consumed name, if any.
func (s *Schedule) fusedInto(name string) *Var {
	for _, v := range s.vars {
		if v.Kind == Fused && (v.FuseA == name || v.FuseB == name) {
			return v
		}
	}
	return nil
}
