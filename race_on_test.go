//go:build race

package distal

// raceEnabled reports that the race detector is instrumenting this build;
// timing-based assertions are skipped because instrumentation skews the
// compile/execute cost ratio.
const raceEnabled = true
