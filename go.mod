module distal

go 1.24
