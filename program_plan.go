package distal

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"distal/internal/legion"
	"distal/internal/obs"
	"distal/internal/program"
	"distal/internal/tensor"
)

// ProgramPlan is a compiled multi-statement program: one immutable plan per
// statement (each resolved through the session's plan cache and
// singleflight, exactly as a single-statement Compile would), wired into a
// DAG that executes stage by stage with intermediates kept distributed in
// between. A producer's output instances are handed to the consumer as
// pre-placed initial instances; when producer and consumer disagree on an
// intermediate's format, an explicit repartition stage (the Redistribute
// schedule, itself a cached plan) moves the data owner-to-owner — an
// intermediate never gathers to a single leaf between stages.
//
// Like Plan, a ProgramPlan is data-free and safe for concurrent use: bind
// leaf-input data per execution with Bind or BindBatch; intermediates and
// outputs are allocated privately per binding.
type ProgramPlan struct {
	sess   *Session
	prog   *program.Program
	stages []*programStage
	ls     []legion.Stage
	key    string
	stats  CompileStats
}

// programStage is one stage of the compiled DAG: a source statement's plan
// or an inserted repartition, with the handoffs wiring it to earlier stages.
type programStage struct {
	plan    *Plan
	inherit []legion.Handoff
	output  string // this stage's LHS region: allocated per execution
	shape   []int
	repart  bool // an inserted repartition, not a source statement
}

// CompileProgram compiles a multi-statement request into a ProgramPlan.
// req.Stmts carries the statements (with per-statement formats and
// schedules) and req.Shapes declares the leaf inputs only — intermediate
// shapes are inferred from their producers, and a Shapes entry for an
// assigned tensor (equivalently, an intermediate name colliding with an
// input's) is rejected as KindParse. Each stage compiles through the
// session's plan cache, so re-compiling a program whose statements were
// seen before costs no compiler run at all, and two programs sharing a
// statement share its plan.
func (s *Session) CompileProgram(ctx context.Context, req Request) (*ProgramPlan, error) {
	ctx, sp := obs.Start(ctx, "compile-program")
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(KindCanceled, "compile-program", err)
	}
	if len(req.Stmts) == 0 {
		return nil, wrapErr(KindParse, "compile-program", fmt.Errorf("request has no statements (put them in Stmts)"))
	}
	if req.Stmt != "" || req.Schedule != "" || len(req.Formats) > 0 {
		return nil, wrapErr(KindParse, "compile-program",
			fmt.Errorf("multi-statement requests put statements, formats, and schedules inside Stmts; the top-level Stmt/Formats/Schedule must be empty"))
	}
	specs := make([]program.Statement, len(req.Stmts))
	for i, st := range req.Stmts {
		specs[i] = program.Statement{Stmt: st.Stmt, Formats: st.Formats, Schedule: st.Schedule}
	}
	prog, err := program.Parse(specs, req.Shapes)
	if err != nil {
		return nil, wrapErr(KindParse, "compile-program", err)
	}

	// taken guards repartition-region naming against every tensor of the
	// program (and previously inserted repartitions).
	taken := map[string]bool{}
	for name := range prog.Shapes {
		taken[name] = true
	}
	type placed struct {
		idx    int    // stage holding this (tensor, layout)
		region string // region name in that stage's program
	}
	var (
		built    []*programStage
		placedAt = map[string]placed{} // name + "\x00" + canonical format -> location
		builtOf  = map[string]int{}    // assigned tensor -> producing stage index
		fmtOf    = map[string]string{} // assigned tensor -> canonical producer format
	)
	layoutKey := func(name, canon string) string { return name + "\x00" + canon }
	for _, st := range prog.Stages {
		assign := st.Assign
		lhs := assign.LHS.Tensor
		stageShapes := map[string][]int{}
		canon := map[string]string{}
		for _, name := range assign.TensorNames() {
			stageShapes[name] = prog.Shapes[name]
			_, c, ferr := effectiveFormat(st.Src.Formats, name, len(prog.Shapes[name]))
			if ferr != nil {
				return nil, wrapErr(KindParse, "compile-program", fmt.Errorf("statement %d: %w", st.Index, ferr))
			}
			canon[name] = c
		}
		var inherit []legion.Handoff
		var freshLeaves []string
		for _, name := range assign.TensorNames() {
			if name == lhs {
				continue
			}
			key := layoutKey(name, canon[name])
			if pi, ok := builtOf[name]; ok {
				// An earlier stage computed this tensor: adopt its instances
				// when the layouts agree, repartition owner-to-owner when
				// they do not — never through a single leaf.
				if fmtOf[name] == canon[name] {
					inherit = append(inherit, legion.Handoff{From: pi, Region: name, To: name})
					continue
				}
				loc, ok := placedAt[key]
				if !ok {
					rst, rerr := s.repartitionStage(ctx, name, prog.Shapes[name], fmtOf[name], canon[name], pi, taken)
					if rerr != nil {
						return nil, rerr
					}
					loc = placed{idx: len(built), region: rst.output}
					built = append(built, rst)
					placedAt[key] = loc
				}
				inherit = append(inherit, legion.Handoff{From: loc.idx, Region: loc.region, To: name})
				continue
			}
			// A leaf input: share the placed instances with any earlier
			// stage that reads it under the same layout (read-only, so
			// adoption is free); a different layout places its own copy.
			if loc, ok := placedAt[key]; ok {
				inherit = append(inherit, legion.Handoff{From: loc.idx, Region: loc.region, To: name})
			} else {
				freshLeaves = append(freshLeaves, key)
			}
		}
		sctx, ssp := obs.Start(ctx, "compile-stage")
		ssp.SetAttr("statement", fmt.Sprint(st.Index))
		ssp.SetAttr("output", lhs)
		plan, cerr := s.Compile(sctx, Request{
			Stmt:     st.Src.Stmt,
			Shapes:   stageShapes,
			Formats:  st.Src.Formats,
			Schedule: st.Src.Schedule,
		})
		ssp.End()
		if cerr != nil {
			return nil, &Error{Kind: KindOf(cerr), Op: "compile-program", Err: fmt.Errorf("statement %d: %w", st.Index, cerr)}
		}
		idx := len(built)
		built = append(built, &programStage{
			plan:    plan,
			inherit: inherit,
			output:  lhs,
			shape:   prog.Shapes[lhs],
		})
		for _, key := range freshLeaves {
			name := key[:strings.IndexByte(key, 0)]
			placedAt[key] = placed{idx: idx, region: name}
		}
		builtOf[lhs] = idx
		fmtOf[lhs] = canon[lhs]
		placedAt[layoutKey(lhs, canon[lhs])] = placed{idx: idx, region: lhs}
	}

	pp := &ProgramPlan{sess: s, prog: prog, stages: built, stats: CompileStats{Cached: true}}
	h := sha256.New()
	for _, st := range built {
		pp.ls = append(pp.ls, legion.Stage{Prog: st.plan.data.prog, Inherit: st.inherit, Label: st.output, Repart: st.repart})
		h.Write([]byte(st.plan.key))
		h.Write([]byte{0})
		sst := st.plan.stats
		if !sst.Cached {
			pp.stats.Cached = false
		}
		if sst.Shared {
			pp.stats.Shared = true
		}
		pp.stats.CompileTime += sst.CompileTime
		pp.stats.Launches += sst.Launches
		pp.stats.Points += sst.Points
	}
	pp.key = hex.EncodeToString(h.Sum(nil))
	return pp, nil
}

// effectiveFormat resolves the format a stage places tensor name under: the
// statement's annotation when present, the canonical tiling of the rank
// otherwise. It returns the source text and the canonical rendering
// (distribution notation normalizes through Placement.String, so two
// annotations spelled differently but placing identically compare equal).
func effectiveFormat(formats map[string]string, name string, rank int) (text, canon string, err error) {
	if src, ok := formats[name]; ok {
		f, err := ParseFormat(src)
		if err != nil {
			return "", "", fmt.Errorf("tensor %s: %w", name, err)
		}
		return src, f.Placement.String(), nil
	}
	if rank > 6 {
		return "", "", fmt.Errorf("tensor %s has rank %d; the default tiling supports ranks up to 6 (give a Formats entry)", name, rank)
	}
	c := Tiled(rank).Placement.String()
	return c, c, nil
}

// repartitionStage compiles the explicit layout change between a producer's
// format and a consumer's: the Redistribute identity statement, placed
// src-format in and dst-format out, scheduled owner-computes over the
// destination — so the runtime performs exactly the owner-to-owner copies
// the layout change requires. The stage's plan resolves through the plan
// cache like any other, and its input region adopts the producer's
// instances directly.
func (s *Session) repartitionStage(ctx context.Context, name string, shape []int, srcFmt, dstFmt string, from int, taken map[string]bool) (*programStage, error) {
	if len(shape) == 0 || len(shape) > 6 {
		return nil, wrapErr(KindParse, "compile-program",
			fmt.Errorf("intermediate %s has rank %d; repartitioning supports ranks 1..6", name, len(shape)))
	}
	rname := name + "__r"
	for i := 2; taken[rname]; i++ {
		rname = fmt.Sprintf("%s__r%d", name, i)
	}
	taken[rname] = true
	vars := []string{"i", "j", "k", "l", "u", "v"}[:len(shape)]
	idx := strings.Join(vars, ",")
	stmt := fmt.Sprintf("%s(%s) = %s(%s)", rname, idx, name, idx)
	sched := fmt.Sprintf("divide(%s,d0,d0i,%d) reorder(%s) distribute(d0) communicate(d0,%s,%s)",
		vars[0], s.machine.Processors(),
		strings.Join(append([]string{"d0", "d0i"}, vars[1:]...), ","),
		rname, name)
	ctx, rsp := obs.Start(ctx, "compile-repartition")
	rsp.SetAttr("tensor", name)
	defer rsp.End()
	plan, err := s.Compile(ctx, Request{
		Stmt:     stmt,
		Shapes:   map[string][]int{name: shape, rname: shape},
		Formats:  map[string]string{name: srcFmt, rname: dstFmt},
		Schedule: sched,
	})
	if err != nil {
		return nil, &Error{Kind: KindOf(err), Op: "compile-program",
			Err: fmt.Errorf("repartitioning %s from %q to %q: %w", name, srcFmt, dstFmt, err)}
	}
	return &programStage{
		plan:    plan,
		inherit: []legion.Handoff{{From: from, Region: name, To: name}},
		output:  rname,
		shape:   shape,
		repart:  true,
	}, nil
}

// Key returns the program plan's cache key: a hash over the stage plan keys
// in execution order (repartition stages included), so two programs with
// equal keys execute identical DAGs.
func (p *ProgramPlan) Key() string { return p.key }

// Stats aggregates the per-stage compile stats: Cached only when every
// stage was served without a compiler run, CompileTime/Launches/Points
// summed across stages.
func (p *ProgramPlan) Stats() CompileStats { return p.stats }

// Stages returns the number of execution stages, inserted repartitions
// included.
func (p *ProgramPlan) Stages() int { return len(p.stages) }

// Repartitions returns how many explicit layout-change stages the DAG
// carries (zero when every producer/consumer pair agreed on formats).
func (p *ProgramPlan) Repartitions() int {
	n := 0
	for _, st := range p.stages {
		if st.repart {
			n++
		}
	}
	return n
}

// StageMeta describes one execution stage of the DAG for reporting surfaces
// (the serve layer's Distal-Stages header, CLI -v rows): static facts only —
// per-stage wall time lives in the request trace.
type StageMeta struct {
	Output   string
	PlanKey  string
	Cached   bool
	Repart   bool
	Launches int
	Points   int
}

// StageMetas returns one StageMeta per execution stage, repartitions
// included, in execution order.
func (p *ProgramPlan) StageMetas() []StageMeta {
	out := make([]StageMeta, len(p.stages))
	for i, st := range p.stages {
		sst := st.plan.Stats()
		out[i] = StageMeta{
			Output:   st.output,
			PlanKey:  st.plan.Key(),
			Cached:   sst.Cached,
			Repart:   st.repart,
			Launches: sst.Launches,
			Points:   sst.Points,
		}
	}
	return out
}

// StagePlans returns the per-stage plans in execution order (repartition
// stages included). The caller must not mutate the returned slice.
func (p *ProgramPlan) StagePlans() []*Plan {
	plans := make([]*Plan, len(p.stages))
	for i, st := range p.stages {
		plans[i] = st.plan
	}
	return plans
}

// Inputs returns the program's leaf inputs in first-use order — the tensors
// an execution binds (and the wire frame order of POST /v1/run). The caller
// must not mutate the returned slice.
func (p *ProgramPlan) Inputs() []string { return p.prog.Inputs() }

// Output returns the last statement's LHS: the tensor a run answers with.
func (p *ProgramPlan) Output() string { return p.prog.Output() }

// Shape returns the shape of the named tensor (leaf inputs as declared,
// assigned tensors as inferred), or nil for unknown names.
func (p *ProgramPlan) Shape(name string) []int { return p.prog.Shapes[name] }

func (p *ProgramPlan) execParams() Params {
	if p.sess != nil {
		return p.sess.params
	}
	return LassenCPU()
}

// Simulate executes the plan DAG without data under the session's cost
// model: stages run in order on one simulated clock, intermediates hand off
// in place, and the combined metrics (makespan, communication, peak memory)
// cover the whole program.
func (p *ProgramPlan) Simulate(ctx context.Context, opts ...ExecOption) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(KindCanceled, "simulate", err)
	}
	res, err := legion.RunStages(ctx, p.ls, legion.NewOptions(p.execParams(), opts...))
	if err != nil {
		return nil, wrapErr(KindExec, "simulate", err)
	}
	return res, nil
}

// Bind attaches real data for one execution. Exactly the leaf inputs are
// bound — every intermediate and output is allocated privately by the
// binding, so concurrent executions never share state; read the result from
// Output (or any intermediate from Tensor) after Run. Binding errors
// surface at Run.
func (p *ProgramPlan) Bind(tensors ...*Tensor) *ProgramBinding {
	b := &ProgramBinding{plan: p, data: map[string]*tensor.Dense{}}
	leaf := map[string]bool{}
	for _, name := range p.prog.Inputs() {
		leaf[name] = true
	}
	for _, t := range tensors {
		if !leaf[t.Name] {
			if p.prog.Shapes[t.Name] != nil {
				b.err = wrapErr(KindExec, "bind", fmt.Errorf("tensor %s is computed by the program; bind leaf inputs only", t.Name))
			} else {
				b.err = wrapErr(KindExec, "bind", fmt.Errorf("program has no tensor %s", t.Name))
			}
			return b
		}
		if t.Data == nil {
			b.err = wrapErr(KindExec, "bind", fmt.Errorf("tensor %s has no data (use Zero, FillRandom, or Bind)", t.Name))
			return b
		}
		want := p.prog.Shapes[t.Name]
		got := t.Data.Shape()
		if len(got) != len(want) {
			b.err = wrapErr(KindExec, "bind", fmt.Errorf("tensor %s has rank %d, program wants %d", t.Name, len(got), len(want)))
			return b
		}
		for d := range want {
			if got[d] != want[d] {
				b.err = wrapErr(KindExec, "bind", fmt.Errorf("tensor %s has shape %v, program wants %v", t.Name, got, want))
				return b
			}
		}
		b.data[t.Name] = t.Data
	}
	for _, name := range p.prog.Inputs() {
		if _, ok := b.data[name]; !ok {
			b.err = wrapErr(KindExec, "bind", fmt.Errorf("no data bound for leaf input %s", name))
			return b
		}
	}
	for _, st := range p.stages {
		d := tensor.New(st.output, st.shape...)
		b.data[st.output] = d
		if st.output == p.prog.Output() {
			b.out = &Tensor{Name: st.output, Shape: append([]int(nil), st.shape...), Data: d}
		}
	}
	return b
}

// ProgramBinding is a ProgramPlan with real data attached: leaf inputs from
// the caller, intermediates and outputs owned by the binding.
type ProgramBinding struct {
	plan *ProgramPlan
	data map[string]*tensor.Dense
	out  *Tensor
	err  error
}

// Output returns the output tensor (after Run it holds the result), or nil
// when the binding failed.
func (b *ProgramBinding) Output() *Tensor {
	if b.err != nil {
		return nil
	}
	return b.out
}

// Tensor returns the bound or allocated data of any tensor of the program —
// leaf inputs, intermediates, and outputs alike — or nil for unknown names
// or failed bindings. After Run, an intermediate's tensor holds the value
// its producing stage computed.
func (b *ProgramBinding) Tensor(name string) *tensor.Dense {
	if b.err != nil {
		return nil
	}
	return b.data[name]
}

// Run executes the plan DAG on the bound data: stages run in order,
// consumers read the producers' distributed results in place (through the
// repartition stages where layouts disagreed), and the returned Result
// carries the combined simulated metrics. It aborts with KindCanceled at
// the runtime's next checkpoint once ctx is done (intermediates and the
// output are then in an unspecified partial state).
func (b *ProgramBinding) Run(ctx context.Context, opts ...ExecOption) (*Result, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(KindCanceled, "run", err)
	}
	mods := append([]ExecOption{WithReal(), legion.WithData(b.data)}, opts...)
	res, err := legion.RunStages(ctx, b.plan.ls, legion.NewOptions(b.plan.execParams(), mods...))
	if err != nil {
		return nil, wrapErr(KindExec, "run", err)
	}
	return res, nil
}

// ProgramBatchBinding is a ProgramPlan bound to N independent problem
// instances: one launch walk per stage covers the whole batch, with each
// instance's intermediates and outputs private to it.
type ProgramBatchBinding struct {
	plan  *ProgramPlan
	insts []map[string]*tensor.Dense
	outs  []*Tensor
	err   error
}

// BindBatch attaches leaf-input data for N problem instances, one tensor
// set per instance, validated exactly as Bind validates a single set.
// Instances may share input tensors; intermediates and outputs are
// allocated per instance, so they can never race. Binding errors surface at
// Run.
func (p *ProgramPlan) BindBatch(instances ...[]*Tensor) *ProgramBatchBinding {
	bb := &ProgramBatchBinding{plan: p}
	if len(instances) == 0 {
		bb.err = wrapErr(KindExec, "bind-batch", fmt.Errorf("empty batch: bind at least one instance"))
		return bb
	}
	for i, ts := range instances {
		b := p.Bind(ts...)
		if b.err != nil {
			bb.err = &Error{Kind: KindOf(b.err), Op: "bind-batch", Err: fmt.Errorf("instance %d: %w", i, b.err)}
			return bb
		}
		bb.insts = append(bb.insts, b.data)
		bb.outs = append(bb.outs, b.out)
	}
	return bb
}

// Len returns the number of bound instances (0 when the binding failed).
func (bb *ProgramBatchBinding) Len() int { return len(bb.insts) }

// Output returns instance i's output tensor (after Run it holds that
// instance's result), or nil when the binding failed or i is out of range.
func (bb *ProgramBatchBinding) Output(i int) *Tensor {
	if bb.err != nil || i < 0 || i >= len(bb.outs) {
		return nil
	}
	return bb.outs[i]
}

// Run executes the plan DAG on every bound instance in one walk per stage
// and returns one Result per instance (identical metrics: the accounting
// runs once, as with Plan batching).
func (bb *ProgramBatchBinding) Run(ctx context.Context, opts ...ExecOption) ([]*Result, error) {
	if bb.err != nil {
		return nil, bb.err
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(KindCanceled, "run-batch", err)
	}
	mods := append([]ExecOption{WithReal(), legion.WithBatch(bb.insts)}, opts...)
	res, err := legion.RunStages(ctx, bb.plan.ls, legion.NewOptions(bb.plan.execParams(), mods...))
	if err != nil {
		return nil, wrapErr(KindExec, "run-batch", err)
	}
	out := make([]*Result, len(bb.insts))
	for i := range out {
		r := *res
		out[i] = &r
	}
	return out, nil
}
