package distal

import (
	"fmt"
	"strings"
)

// redistribute is the shared implementation behind Session.Redistribute and
// the deprecated free function: sess may be nil for one-shot use.
func redistribute(sess *Session, t *Tensor, dst Format, m *Machine) (*Program, *Tensor, error) {
	if len(t.Shape) == 0 || len(t.Shape) > 6 {
		return nil, nil, fmt.Errorf("distal: redistribute supports ranks 1..6, got %d", len(t.Shape))
	}
	if dst.Placement == nil {
		return nil, nil, fmt.Errorf("distal: redistribute destination format is empty (use ParseFormat)")
	}
	out := NewTensor(t.Name+"_r", dst, t.Shape...)
	if t.Data != nil {
		out.Zero()
	}
	vars := []string{"i", "j", "k", "l", "u", "v"}[:len(t.Shape)]
	idx := strings.Join(vars, ",")
	expr := fmt.Sprintf("%s(%s) = %s(%s)", out.Name, idx, t.Name, idx)
	comp, err := Define(expr, m, out, t)
	if err != nil {
		return nil, nil, err
	}
	comp.sess = sess
	// Owner-computes over the destination: distribute the leading dimension
	// across all leaf processors and aggregate all communication at the
	// task level. This is correct for any (src, dst) placement pair: reads
	// gather from the source owners, writes flush to the destination
	// owners. Expressed as schedule text so the layout change is itself a
	// storable, cacheable workload.
	sched := fmt.Sprintf("divide(%s,d0,d0i,%d) reorder(%s) distribute(d0) communicate(d0,%s,%s)",
		vars[0], m.Processors(),
		strings.Join(append([]string{"d0", "d0i"}, vars[1:]...), ","),
		out.Name, t.Name)
	if err := comp.ApplySchedule(sched); err != nil {
		return nil, nil, err
	}
	prog, err := comp.Compile()
	if err != nil {
		return nil, nil, err
	}
	return prog, out, nil
}

// Redistribute builds a program that moves tensor t into the dst format
// (§1: "easily transform data between distributed layouts to match the
// computation"). It is compiled through the ordinary pipeline — an identity
// statement whose output is placed under the destination format and whose
// loops are distributed owner-computes over the destination — so the
// runtime discovers exactly the copies the layout change requires, prices
// them, and (in Real mode) performs them.
//
// The returned tensor is the destination; after Run its Data holds t's
// contents.
//
// Deprecated: prefer Session.Redistribute, which caches the layout-change
// plan.
func Redistribute(t *Tensor, dst Format, m *Machine) (*Program, *Tensor, error) {
	return redistribute(nil, t, dst, m)
}

// RedistributeCost simulates the layout change and returns the moved bytes
// and simulated seconds without touching data.
//
// Deprecated: prefer Session.RedistributeCost.
func RedistributeCost(t *Tensor, dst Format, m *Machine, params Params) (bytes int64, seconds float64, err error) {
	prog, _, err := Redistribute(t, dst, m)
	if err != nil {
		return 0, 0, err
	}
	res, err := prog.Simulate(params)
	if err != nil {
		return 0, 0, err
	}
	return res.IntraBytes + res.InterBytes, res.Time, nil
}
