package distal

import (
	"fmt"
	"strings"
)

// Redistribute builds a program that moves tensor t into the dst format
// (§1: "easily transform data between distributed layouts to match the
// computation"). It is compiled through the ordinary pipeline — an identity
// statement whose output is placed under the destination format and whose
// loops are distributed owner-computes over the destination — so the
// runtime discovers exactly the copies the layout change requires, prices
// them, and (in Real mode) performs them.
//
// The returned tensor is the destination; after Run its Data holds t's
// contents.
func Redistribute(t *Tensor, dst Format, m *Machine) (*Program, *Tensor, error) {
	if len(t.Shape) == 0 || len(t.Shape) > 6 {
		return nil, nil, fmt.Errorf("distal: redistribute supports ranks 1..6, got %d", len(t.Shape))
	}
	out := NewTensor(t.Name+"_r", dst, t.Shape...)
	if t.Data != nil {
		out.Zero()
	}
	vars := []string{"i", "j", "k", "l", "u", "v"}[:len(t.Shape)]
	idx := strings.Join(vars, ",")
	expr := fmt.Sprintf("%s(%s) = %s(%s)", out.Name, idx, t.Name, idx)
	comp, err := Define(expr, m, out, t)
	if err != nil {
		return nil, nil, err
	}
	// Owner-computes over the destination: distribute the leading dimension
	// across all leaf processors and aggregate all communication at the
	// task level. This is correct for any (src, dst) placement pair: reads
	// gather from the source owners, writes flush to the destination
	// owners.
	procs := m.Processors()
	s := comp.sched
	s.Divide(vars[0], "d0", "d0i", procs)
	order := append([]string{"d0", "d0i"}, vars[1:]...)
	s.Reorder(order...).Distribute("d0").Communicate("d0", out.Name, t.Name)
	if err := s.Err(); err != nil {
		return nil, nil, err
	}
	prog, err := comp.Compile()
	if err != nil {
		return nil, nil, err
	}
	return prog, out, nil
}

// RedistributeCost simulates the layout change and returns the moved bytes
// and simulated seconds without touching data.
func RedistributeCost(t *Tensor, dst Format, m *Machine, params Params) (bytes int64, seconds float64, err error) {
	prog, _, err := Redistribute(t, dst, m)
	if err != nil {
		return 0, 0, err
	}
	res, err := prog.Simulate(params)
	if err != nil {
		return 0, 0, err
	}
	return res.IntraBytes + res.InterBytes, res.Time, nil
}
