package distal

import (
	"testing"
	"time"
)

// planCacheRequest is the GEMM workload the plan-cache benchmark measures:
// owner-computes over a 4x4 grid with broadcast-replicated inputs and a
// sequential k chunking, so the plan has many launch points to analyze. A
// cold Execute pays the full per-point bounds analysis during compilation;
// a cache-hit Execute reuses the materialized plan and only walks the task
// graph.
func planCacheRequest() Request {
	const n = 1024
	return Request{
		Stmt:    gemmStmt,
		Shapes:  map[string][]int{"A": {n, n}, "B": {n, n}, "C": {n, n}},
		Formats: map[string]string{"A": "xy->xy", "B": "xy->**", "C": "xy->**"},
		Schedule: "divide(i,io,ii,4) divide(j,jo,ji,4) reorder(io,jo,ii,ji) " +
			"distribute(io,jo) split(k,ko,ki,128) reorder(io,jo,ko,ii,ji,ki) " +
			"communicate(ko,B,C)",
	}
}

func planCacheMachine() *Machine { return NewMachine(CPU, 4, 4) }

// BenchmarkPlanCache compares Session.Execute with a cold plan cache (every
// iteration compiles) against a warm one (every iteration hits).
func BenchmarkPlanCache(b *testing.B) {
	req := planCacheRequest()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess := NewSession(planCacheMachine())
			if _, err := sess.Execute(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		sess := NewSession(planCacheMachine())
		if _, err := sess.Execute(req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Execute(req); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := sess.CacheStats()
		if st.Misses != 1 {
			b.Fatalf("warm loop recompiled: %+v", st)
		}
	})
}

// TestPlanCacheSpeedup asserts the headline property: a cache-hit Execute
// is at least 10x faster than a cold compile+execute of the same workload.
// Both sides take the fastest of several individually timed runs, so a
// noisy-neighbor stall on a shared CI runner cannot skew the ratio.
func TestPlanCacheSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion is meaningless under the race detector")
	}
	req := planCacheRequest()
	cold := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		sess := NewSession(planCacheMachine())
		start := time.Now()
		if _, err := sess.Execute(req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < cold {
			cold = d
		}
	}
	sess := NewSession(planCacheMachine())
	if _, err := sess.Execute(req); err != nil {
		t.Fatal(err)
	}
	warm := time.Duration(1<<62 - 1)
	for i := 0; i < 20; i++ {
		start := time.Now()
		if _, err := sess.Execute(req); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < warm {
			warm = d
		}
	}
	ratio := float64(cold) / float64(warm)
	t.Logf("cold=%v warm=%v ratio=%.1fx", cold, warm, ratio)
	// The bound was 10x when compilation did its bounds analysis through
	// string-keyed maps, then 3x after the compiled evaluator and parallel
	// launch materialization. Direct slab materialization with interned
	// rect signatures cut cold compiles a further ~2.8x (measured ratio now
	// 3.0-3.8x on a 1-core Xeon), so 2x is the margin that still pins the
	// property that a cache hit skips a compile worth of work without
	// flaking as the compiler keeps getting faster.
	if ratio < 2 {
		t.Fatalf("cache-hit Execute only %.1fx faster than cold (%v vs %v), want >= 2x", ratio, warm, cold)
	}
}
