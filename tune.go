package distal

import (
	"context"
	"fmt"
	"sync"
	"time"

	"distal/internal/tune"
)

// DefaultTuneBudget is the candidate budget of a Tune run that does not
// set one — shared by TuneOptions and the /v1/tune wire default, so an
// omitted budget means the same search everywhere.
const DefaultTuneBudget = 64

// TuneOptions bounds one Session.Tune run. The zero value asks for the
// defaults (DefaultTuneBudget candidates, beam 4, seed 0, leaderboard of
// 10).
type TuneOptions struct {
	// Budget is the maximum number of candidate schedules evaluated
	// (compiled through the plan cache and simulated), the AutoSchedule
	// baseline included. 0 means DefaultTuneBudget.
	Budget int
	// Beam is how many top-ranked tilings the second search stage refines
	// with sequential-step pipelines.
	Beam int
	// Seed drives overflow sampling when the candidate space exceeds the
	// budget: equal seed and budget evaluate the same candidates.
	Seed int64
	// Workers bounds concurrent evaluations; the result does not depend on
	// it. Default min(GOMAXPROCS, 8).
	Workers int
	// KeepTop is the leaderboard length.
	KeepTop int
}

// TunedCandidate is one leaderboard entry: a schedule and its simulated
// metrics under the session's cost model.
type TunedCandidate struct {
	// Schedule is the candidate in serializable command text form; feed it
	// back through Request.Schedule to recompile anywhere.
	Schedule string
	// MakespanSec is the simulated makespan, the tuner's objective.
	MakespanSec  float64
	GFlops       float64
	Copies       int64
	IntraBytes   int64
	InterBytes   int64
	PeakMemBytes int64
	OOM          bool
	// PlanKey identifies the candidate's compiled plan in the cache.
	PlanKey string
}

// TuneResult is what Session.Tune found.
type TuneResult struct {
	// Best is the winning plan, compiled and resident in the session's
	// plan cache.
	Best *Plan
	// Winner is the leaderboard entry behind Best.
	Winner TunedCandidate
	// Baseline is the AutoSchedule heuristic's entry, always evaluated, so
	// callers can report the tuner's improvement. Winner.MakespanSec <=
	// Baseline.MakespanSec whenever the baseline is legal for the workload
	// and does not exhaust memory (a non-OOM winner outranks a faster OOM
	// baseline by design).
	Baseline *TunedCandidate
	// Leaderboard ranks the evaluated candidates best-first (at most
	// KeepTop).
	Leaderboard []TunedCandidate
	// Generated, Illegal, Deduped, Evaluated, and Failed count the run:
	// candidates emitted by the generator, rejected by the scheduling
	// language before compile, dropped as duplicates, evaluated, and
	// failed in compile/simulate.
	Generated, Illegal, Deduped, Evaluated, Failed int
	// Elapsed is the wall time of the search.
	Elapsed time.Duration
}

// Tune searches the schedule space of the request for the schedule with the
// lowest simulated makespan under the session's cost model. The request
// names the workload exactly as Compile does, except that Request.Schedule
// is not applied but — when non-empty — entered as a candidate, so a
// hand-written schedule competes against the generated ones. The
// AutoSchedule baseline always competes.
//
// Candidates compile through the session's plan cache (tuning a workload
// warms the cache with every candidate evaluated) and simulate concurrently
// over a bounded worker pool. For a fixed request, machine, seed, and
// budget the leaderboard is deterministic, independent of Workers and
// GOMAXPROCS. Cancellation of ctx aborts the search with KindCanceled.
func (s *Session) Tune(ctx context.Context, req Request, opts TuneOptions) (*TuneResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapErr(KindCanceled, "tune", err)
	}
	c, err := s.buildUnscheduled(req)
	if err != nil {
		return nil, err
	}
	extents, err := c.Stmt.VarExtents(req.Shapes)
	if err != nil {
		return nil, wrapErr(KindParse, "tune", err)
	}
	grid := s.machine.M.LeafGrid().Dims

	var seeds []string
	baselineText := ""
	if cs, err := autoScheduleCommands(c.Stmt, grid); err == nil {
		baselineText = cs.String()
		seeds = append(seeds, baselineText)
	}
	if req.Schedule != "" {
		seeds = append(seeds, req.Schedule)
	}

	// evaluated records every successful oracle result by schedule text, so
	// the baseline's metrics can be reported without re-simulating it (it
	// always ran as the first seed).
	var evalMu sync.Mutex
	evaluated := map[string]tune.Metrics{}
	oracle := tune.OracleFunc(func(ctx context.Context, scheduleText string) (tune.Metrics, error) {
		r := req
		r.Schedule = scheduleText
		plan, err := s.Compile(ctx, r)
		if err != nil {
			return tune.Metrics{}, err
		}
		res, err := plan.Simulate(ctx)
		if err != nil {
			return tune.Metrics{}, err
		}
		m := tune.Metrics{
			MakespanSec:  res.Time,
			GFlops:       res.GFlopsPerSec(),
			Flops:        res.Flops,
			Copies:       res.Copies,
			IntraBytes:   res.IntraBytes,
			InterBytes:   res.InterBytes,
			PeakMemBytes: res.PeakMemBytes,
			OOM:          res.OOM,
			PlanKey:      plan.Key(),
			Cached:       plan.Stats().Cached,
		}
		evalMu.Lock()
		evaluated[scheduleText] = m
		evalMu.Unlock()
		return m, nil
	})

	budget := opts.Budget
	if budget <= 0 {
		budget = DefaultTuneBudget
	}
	start := time.Now()
	tr, err := tune.Tune(ctx, tune.Input{Stmt: c.Stmt, Extents: extents, Grid: grid}, oracle, tune.Options{
		Budget:  budget,
		Beam:    opts.Beam,
		Seed:    opts.Seed,
		Workers: opts.Workers,
		KeepTop: opts.KeepTop,
		Seeds:   seeds,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, wrapErr(KindCanceled, "tune", ctx.Err())
		}
		return nil, wrapErr(KindSchedule, "tune", err)
	}

	winnerReq := req
	winnerReq.Schedule = tr.Best.Schedule
	best, err := s.Compile(ctx, winnerReq)
	if err != nil {
		return nil, err
	}

	out := &TuneResult{
		Best:      best,
		Winner:    fromTuneCandidate(tr.Best),
		Generated: tr.Stats.Generated,
		Illegal:   tr.Stats.Illegal,
		Deduped:   tr.Stats.Deduped,
		Evaluated: tr.Stats.Evaluated,
		Failed:    tr.Stats.Failed,
		Elapsed:   time.Since(start),
	}
	for _, c := range tr.Leaderboard {
		out.Leaderboard = append(out.Leaderboard, fromTuneCandidate(c))
	}
	if baselineText != "" {
		// The baseline ran as the first seed; its metrics were recorded
		// then (absent only if its compile/simulate failed).
		if base, ok := evaluated[baselineText]; ok {
			bc := fromTuneCandidate(tune.Candidate{Schedule: baselineText, Metrics: base})
			out.Baseline = &bc
		}
	}
	return out, nil
}

func fromTuneCandidate(c tune.Candidate) TunedCandidate {
	return TunedCandidate{
		Schedule:     c.Schedule,
		MakespanSec:  c.Metrics.MakespanSec,
		GFlops:       c.Metrics.GFlops,
		Copies:       c.Metrics.Copies,
		IntraBytes:   c.Metrics.IntraBytes,
		InterBytes:   c.Metrics.InterBytes,
		PeakMemBytes: c.Metrics.PeakMemBytes,
		OOM:          c.Metrics.OOM,
		PlanKey:      c.Metrics.PlanKey,
	}
}

// Speedup reports the tuner's improvement over the AutoSchedule baseline as
// baseline/winner makespan (1.0 = matched, >1 = faster), or 0 when no
// baseline was evaluated.
func (r *TuneResult) Speedup() float64 {
	if r.Baseline == nil || r.Winner.MakespanSec <= 0 {
		return 0
	}
	return r.Baseline.MakespanSec / r.Winner.MakespanSec
}

// String summarizes the result for CLI display.
func (r *TuneResult) String() string {
	s := fmt.Sprintf("tuned %d candidates (%d generated, %d illegal, %d duplicate, %d failed) in %s\nwinner: %s\n  makespan %.6fs",
		r.Evaluated, r.Generated, r.Illegal, r.Deduped, r.Failed, r.Elapsed.Round(time.Millisecond),
		r.Winner.Schedule, r.Winner.MakespanSec)
	if r.Baseline != nil {
		s += fmt.Sprintf(" (AutoSchedule baseline %.6fs, %.2fx)", r.Baseline.MakespanSec, r.Speedup())
	}
	return s
}
