package distal

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// tuneBoard flattens a leaderboard to the fields determinism guarantees:
// schedule text and simulated makespan.
func tuneBoard(res *TuneResult) []TunedCandidate {
	out := make([]TunedCandidate, len(res.Leaderboard))
	for i, c := range res.Leaderboard {
		out[i] = TunedCandidate{Schedule: c.Schedule, MakespanSec: c.MakespanSec}
	}
	return out
}

// TestTuneSummaBeatsAutoSchedule pins the acceptance guarantee on the SUMMA
// workload: a modest budget finds a schedule at least as good as the
// AutoSchedule heuristic (which always competes as a seed), the winner's
// plan is resident in the cache under its reported key, and the makespan
// improves strictly (the k-pipeline beats one-shot broadcast on a 4x4
// grid).
func TestTuneSummaBeatsAutoSchedule(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 4, 4))
	req := Request{
		Stmt:   gemmStmt,
		Shapes: map[string][]int{"A": {1024, 1024}, "B": {1024, 1024}, "C": {1024, 1024}},
	}
	res, err := sess.Tune(context.Background(), req, TuneOptions{Budget: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline == nil {
		t.Fatal("no AutoSchedule baseline evaluated")
	}
	if res.Winner.MakespanSec > res.Baseline.MakespanSec {
		t.Fatalf("winner %.9fs is worse than AutoSchedule %.9fs", res.Winner.MakespanSec, res.Baseline.MakespanSec)
	}
	if res.Winner.MakespanSec >= res.Baseline.MakespanSec {
		t.Errorf("expected a strict improvement on SUMMA, got winner %.9fs vs baseline %.9fs",
			res.Winner.MakespanSec, res.Baseline.MakespanSec)
	}
	if res.Best == nil || res.Best.Key() != res.Winner.PlanKey {
		t.Fatalf("Best plan key %q does not match winner %q", res.Best.Key(), res.Winner.PlanKey)
	}
	// The winning schedule recompiles to the same plan from cold.
	req.Schedule = res.Winner.Schedule
	fresh := NewSession(NewMachine(CPU, 4, 4))
	plan, err := fresh.Compile(context.Background(), req)
	if err != nil {
		t.Fatalf("winner schedule does not recompile: %v", err)
	}
	if plan.Key() != res.Winner.PlanKey {
		t.Fatalf("winner recompiled to key %q, want %q", plan.Key(), res.Winner.PlanKey)
	}
	if res.Evaluated > 64 {
		t.Fatalf("evaluated %d candidates, budget was 64", res.Evaluated)
	}
}

// TestTuneJohnsonBeatsHandSchedule covers the Johnson workload, where
// AutoSchedule is undefined (two output variables, three machine
// dimensions): the hand-written example schedule competes as a seed, so the
// winner is never worse than it — and the tuner must find Johnson's
// all-dimensions distribution on its own.
func TestTuneJohnsonBeatsHandSchedule(t *testing.T) {
	hand := "divide(i,io,ii,2) divide(j,jo,ji,2) divide(k,ko,ki,2) " +
		"reorder(io,jo,ko,ii,ji,ki) distribute(io,jo,ko) communicate(ko,A,B,C)"
	req := Request{
		Stmt:     gemmStmt,
		Shapes:   map[string][]int{"A": {256, 256}, "B": {256, 256}, "C": {256, 256}},
		Formats:  map[string]string{"A": "xy->xy0", "B": "xz->x0z", "C": "zy->0yz"},
		Schedule: hand,
	}
	sess := NewSession(NewMachine(CPU, 2, 2, 2))
	handRes, err := sess.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Tune(context.Background(), req, TuneOptions{Budget: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline != nil {
		t.Fatalf("AutoSchedule should be undefined on a 3-D grid for GEMM, got baseline %q", res.Baseline.Schedule)
	}
	if res.Winner.MakespanSec > handRes.Time {
		t.Fatalf("winner %.9fs is worse than the hand schedule %.9fs", res.Winner.MakespanSec, handRes.Time)
	}
	// Without the seed, the generator still reaches a schedule at least as
	// good: the 3-D tiling is in its own space.
	unseeded := req
	unseeded.Schedule = ""
	res2, err := NewSession(NewMachine(CPU, 2, 2, 2)).Tune(context.Background(), unseeded, TuneOptions{Budget: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Winner.MakespanSec > handRes.Time {
		t.Fatalf("unseeded winner %.9fs is worse than the hand schedule %.9fs", res2.Winner.MakespanSec, handRes.Time)
	}
}

// TestTuneDeterministic pins the determinism invariant: same request, seed,
// and budget produce the identical leaderboard — across fresh sessions,
// different worker counts, and different GOMAXPROCS.
func TestTuneDeterministic(t *testing.T) {
	req := Request{
		Stmt:   gemmStmt,
		Shapes: map[string][]int{"A": {256, 256}, "B": {256, 256}, "C": {256, 256}},
	}
	run := func(workers int) *TuneResult {
		sess := NewSession(NewMachine(CPU, 4, 4))
		res, err := sess.Tune(context.Background(), req, TuneOptions{Budget: 40, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := tuneBoard(run(1))
	if len(ref) == 0 {
		t.Fatal("empty leaderboard")
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	for _, workers := range []int{2, 8} {
		got := tuneBoard(run(workers))
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: leaderboard length %d, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: leaderboard[%d] = %+v, want %+v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestTuneSeedChangesSampling checks the seed is live: with a budget far
// below the candidate space, the evaluated set (and its size bound) stays
// within budget, and equal seeds reproduce equal winners.
func TestTuneSeedChangesSampling(t *testing.T) {
	req := Request{
		Stmt:   gemmStmt,
		Shapes: map[string][]int{"A": {256, 256}, "B": {256, 256}, "C": {256, 256}},
	}
	run := func(seed int64) *TuneResult {
		sess := NewSession(NewMachine(CPU, 4, 4))
		res, err := sess.Tune(context.Background(), req, TuneOptions{Budget: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Evaluated > 12 {
			t.Fatalf("evaluated %d > budget 12", res.Evaluated)
		}
		return res
	}
	a1, a2 := run(3), run(3)
	if a1.Winner != a2.Winner {
		t.Fatalf("same seed, different winners:\n%+v\n%+v", a1.Winner, a2.Winner)
	}
}

// TestTuneRequestErrors covers the error surface: malformed statements are
// KindParse, and a canceled context surfaces as KindCanceled.
func TestTuneRequestErrors(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	_, err := sess.Tune(context.Background(), Request{Stmt: "not a statement"}, TuneOptions{})
	if KindOf(err) != KindParse {
		t.Fatalf("bad statement: kind %v, want parse", KindOf(err))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sess.Tune(ctx, gemmRequest(64), TuneOptions{})
	if KindOf(err) != KindCanceled {
		t.Fatalf("canceled ctx: kind %v, want canceled", KindOf(err))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled tune does not match context.Canceled: %v", err)
	}
}

// TestTuneHandSeedCompetes verifies a request's own schedule enters the
// race: with budget 1 the seeds are still all evaluated, and an unbeatable
// hand schedule wins.
func TestTuneHandSeedCompetes(t *testing.T) {
	sess := NewSession(NewMachine(CPU, 2, 2))
	req := gemmRequest(64) // carries a hand-written pipeline schedule
	res, err := sess.Tune(context.Background(), req, TuneOptions{Budget: 1, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Leaderboard {
		if c.Schedule == req.Schedule {
			found = true
		}
	}
	if !found {
		t.Fatalf("request schedule not on the leaderboard:\n%v", res.Leaderboard)
	}
}
