package distal

import (
	"testing"

	"distal/internal/ir"
	"distal/internal/tensor"
)

func autoRun(t *testing.T, comp *Computation) *Result {
	t.Helper()
	if err := comp.AutoSchedule(); err != nil {
		t.Fatal(err)
	}
	prog, err := comp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAutoScheduleGEMMCorrect(t *testing.T) {
	const n = 12
	m := NewMachine(CPU, 2, 2)
	f := Tiled(2)
	A := NewTensor("A", f, n, n).Zero()
	B := NewTensor("B", f, n, n).FillRandom(1)
	C := NewTensor("C", f, n, n).FillRandom(2)
	comp := MustDefine("A(i,j) = B(i,k) * C(k,j)", m, A, B, C)
	autoRun(t, comp)
	want, err := ir.Evaluate(comp.Stmt, map[string]*tensor.Dense{"B": B.Data, "C": C.Data})
	if err != nil {
		t.Fatal(err)
	}
	if !A.Data.EqualWithin(want, 1e-9) {
		t.Fatal("auto-scheduled GEMM wrong")
	}
}

func TestAutoScheduleAlignedTTVIsCommFree(t *testing.T) {
	m := NewMachine(CPU, 2, 2)
	A := NewTensor("A", Tiled(2), 8, 8).Zero()
	B := NewTensor("B", MustFormat("xyz->xy"), 8, 8, 4).FillRandom(1)
	c := NewTensor("c", MustFormat("x->**"), 4).FillRandom(2)
	comp := MustDefine("A(i,j) = B(i,j,k) * c(k)", m, A, B, c)
	res := autoRun(t, comp)
	if res.Copies != 0 {
		t.Fatalf("aligned TTV should be communication-free, got %d copies", res.Copies)
	}
	want, err := ir.Evaluate(comp.Stmt, map[string]*tensor.Dense{"B": B.Data, "c": c.Data})
	if err != nil {
		t.Fatal(err)
	}
	if !A.Data.EqualWithin(want, 1e-9) {
		t.Fatal("auto-scheduled TTV wrong")
	}
}

func TestAutoScheduleRejectsLowRankOutput(t *testing.T) {
	m := NewMachine(CPU, 2, 2)
	a := NewTensor("a", MustFormat("x->00"), 1).Zero()
	B := NewTensor("B", MustFormat("xyz->xy"), 4, 4, 4).FillRandom(1)
	C := NewTensor("C", MustFormat("xyz->xy"), 4, 4, 4).FillRandom(2)
	comp := MustDefine("a = B(i,j,k) * C(i,j,k)", m, a, B, C)
	if err := comp.AutoSchedule(); err == nil {
		t.Fatal("scalar output on a 2-D machine should be rejected")
	}
}
