package distal

import (
	"strings"
	"testing"

	"distal/internal/ir"
	"distal/internal/tensor"
)

func autoRun(t *testing.T, comp *Computation) *Result {
	t.Helper()
	if err := comp.AutoSchedule(); err != nil {
		t.Fatal(err)
	}
	prog, err := comp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(LassenCPU())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAutoScheduleGEMMCorrect(t *testing.T) {
	const n = 12
	m := NewMachine(CPU, 2, 2)
	f := Tiled(2)
	A := NewTensor("A", f, n, n).Zero()
	B := NewTensor("B", f, n, n).FillRandom(1)
	C := NewTensor("C", f, n, n).FillRandom(2)
	comp := MustDefine("A(i,j) = B(i,k) * C(k,j)", m, A, B, C)
	autoRun(t, comp)
	want, err := ir.Evaluate(comp.Stmt, map[string]*tensor.Dense{"B": B.Data, "C": C.Data})
	if err != nil {
		t.Fatal(err)
	}
	if !A.Data.EqualWithin(want, 1e-9) {
		t.Fatal("auto-scheduled GEMM wrong")
	}
}

func TestAutoScheduleAlignedTTVIsCommFree(t *testing.T) {
	m := NewMachine(CPU, 2, 2)
	A := NewTensor("A", Tiled(2), 8, 8).Zero()
	B := NewTensor("B", MustFormat("xyz->xy"), 8, 8, 4).FillRandom(1)
	c := NewTensor("c", MustFormat("x->**"), 4).FillRandom(2)
	comp := MustDefine("A(i,j) = B(i,j,k) * c(k)", m, A, B, c)
	res := autoRun(t, comp)
	if res.Copies != 0 {
		t.Fatalf("aligned TTV should be communication-free, got %d copies", res.Copies)
	}
	want, err := ir.Evaluate(comp.Stmt, map[string]*tensor.Dense{"B": B.Data, "c": c.Data})
	if err != nil {
		t.Fatal(err)
	}
	if !A.Data.EqualWithin(want, 1e-9) {
		t.Fatal("auto-scheduled TTV wrong")
	}
}

func TestAutoScheduleRejectsLowRankOutput(t *testing.T) {
	m := NewMachine(CPU, 2, 2)
	a := NewTensor("a", MustFormat("x->00"), 1).Zero()
	B := NewTensor("B", MustFormat("xyz->xy"), 4, 4, 4).FillRandom(1)
	C := NewTensor("C", MustFormat("xyz->xy"), 4, 4, 4).FillRandom(2)
	comp := MustDefine("a = B(i,j,k) * C(i,j,k)", m, a, B, C)
	if err := comp.AutoSchedule(); err == nil {
		t.Fatal("scalar output on a 2-D machine should be rejected")
	}
}

// TestAutoScheduleGridWiderThanOutput: a machine grid with more dimensions
// than the output has index variables cannot be tiled owner-computes; the
// error must name the requirement rather than panic or mis-schedule.
func TestAutoScheduleGridWiderThanOutput(t *testing.T) {
	m := NewMachine(CPU, 2, 2, 2) // 3-D grid
	f := MustFormat("xy->xy0")
	A := NewTensor("A", f, 8, 8)
	B := NewTensor("B", f, 8, 8)
	C := NewTensor("C", f, 8, 8)
	// Output has two index variables (i, j), machine has three grid dims.
	comp := MustDefine("A(i,j) = B(i,k) * C(k,j)", m, A, B, C)
	err := comp.AutoSchedule()
	if err == nil {
		t.Fatal("3-D grid with a 2-var output should be rejected")
	}
	if want := "AutoSchedule needs >= 3 output variables"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q should contain %q", err, want)
	}
	// The failed attempt must not have half-applied commands: the schedule
	// is untouched and manual scheduling still works.
	if text := comp.ScheduleText(); text != "" {
		t.Fatalf("failed AutoSchedule left commands behind: %q", text)
	}
}

// TestAutoScheduleHierarchicalGrid: AutoSchedule tiles over the flattened
// leaf grid, so a hierarchical machine counts every level's dimensions.
func TestAutoScheduleHierarchicalGrid(t *testing.T) {
	// A 2x2 grid of processors with ProcsPerNode grouping still has leaf
	// grid rank 2: a 3-var output auto-schedules fine.
	m := NewMachine(CPU, 2, 2).WithProcsPerNode(2)
	f := MustFormat("xyz->xy")
	A := NewTensor("A", f, 8, 8, 8).Zero()
	B := NewTensor("B", f, 8, 8, 8).FillRandom(1)
	comp := MustDefine("A(i,j,k) = B(i,j,k)", m, A, B)
	res := autoRun(t, comp)
	if res.Copies != 0 {
		t.Fatalf("aligned element-wise copy should be communication-free, got %d copies", res.Copies)
	}
}
